// Paper Fig. 17: median max flow stretch (log scale in the paper) as load
// grows from 60% to 90% of min-max link utilization, on networks with
// LLPD > 0.5. B4 degrades sharply at high load; LDR stays near 1; at low
// load B4 is optimal and at high load MinMax converges to optimal.
//
// The LLPD pre-filter and each per-load sweep fan out across LDR_THREADS
// (ParallelFor / RunCorpus) instead of walking topologies serially.
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"
#include "util/thread_pool.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 17: median max stretch vs load, networks with LLPD > 0.5\n");
  std::printf("# rows: <scheme>  <load-percent>  <median-max-stretch>\n");
  std::vector<Topology> corpus = BenchCorpus();
  const double loads[] = {0.60, 0.70, 0.77, 0.85, 0.90};

  // Parallel LLPD pre-filter: keep the high-diversity group.
  std::vector<double> llpd(corpus.size(), 0.0);
  ParallelFor(corpus.size(), [&](size_t i) {
    if (corpus[i].graph.NodeCount() <= 64) {
      llpd[i] = ComputeLlpd(corpus[i].graph);
    }
  });
  std::vector<Topology> high;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].graph.NodeCount() > 64 || llpd[i] <= 0.5) continue;
    bench::Note("fig17: %s (llpd %.2f)", corpus[i].name.c_str(), llpd[i]);
    high.push_back(corpus[i]);
  }

  std::map<double, std::map<std::string, std::vector<double>>> samples;
  for (double load : loads) {
    CorpusRunOptions opts;
    opts.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax,
                       kSchemeMinMaxK10};
    opts.workload.num_instances = BenchFullScale() ? 5 : 2;
    opts.workload.target_utilization = load;
    std::vector<TopologyRun> runs = RunCorpus(high, opts, [&](size_t i) {
      bench::Note("fig17 load %.0f%%: %s (%zu/%zu)", load * 100,
                  high[i].name.c_str(), i + 1, high.size());
    });
    for (const TopologyRun& run : runs) {
      for (const SchemeSeries& s : run.schemes) {
        std::string name = s.scheme == kSchemeOptimal ? "LDR" : s.scheme;
        for (double ms : s.max_stretch) {
          samples[load][name].push_back(ms);
        }
      }
    }
  }
  for (const auto& [load, by_scheme] : samples) {
    for (const auto& [scheme, xs] : by_scheme) {
      PrintSeriesRow(scheme, load * 100, Median(xs));
    }
  }
  return 0;
}
