// Paper Fig. 17: median max flow stretch (log scale in the paper) as load
// grows from 60% to 90% of min-max link utilization, on networks with
// LLPD > 0.5. B4 degrades sharply at high load; LDR stays near 1; at low
// load B4 is optimal and at high load MinMax converges to optimal.
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 17: median max stretch vs load, networks with LLPD > 0.5\n");
  std::printf("# rows: <scheme>  <load-percent>  <median-max-stretch>\n");
  std::vector<Topology> corpus = BenchCorpus();
  const double loads[] = {0.60, 0.70, 0.77, 0.85, 0.90};
  std::map<double, std::map<std::string, std::vector<double>>> samples;
  int idx = 0;
  for (const Topology& t : corpus) {
    ++idx;
    if (t.graph.NodeCount() > 64) continue;
    double llpd = ComputeLlpd(t.graph);
    if (llpd <= 0.5) continue;
    bench::Note("fig17: %s (llpd %.2f, %d/%zu)", t.name.c_str(), llpd, idx,
                corpus.size());
    for (double load : loads) {
      CorpusRunOptions opts;
      opts.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax,
                         kSchemeMinMaxK10};
      opts.workload.num_instances = BenchFullScale() ? 5 : 2;
      opts.workload.target_utilization = load;
      TopologyRun run = RunTopology(t, opts);
      for (const SchemeSeries& s : run.schemes) {
        std::string name = s.scheme == kSchemeOptimal ? "LDR" : s.scheme;
        for (double ms : s.max_stretch) {
          samples[load][name].push_back(ms);
        }
      }
    }
  }
  for (const auto& [load, by_scheme] : samples) {
    for (const auto& [scheme, xs] : by_scheme) {
      PrintSeriesRow(scheme, load * 100, Median(xs));
    }
  }
  return 0;
}
