// Paper Fig. 4 (a-d): congestion and total latency stretch of the active
// schemes vs LLPD — (a) latency-optimal, (b) B4, (c) MinMax, (d) MinMaxK10.
// Per network: median and 90th percentile across traffic-matrix instances.
// The paper's headlines: the optimal scheme fits everything with low
// stretch; B4 congests precisely on the high-LLPD networks; MinMax never
// congests but stretches; MinMaxK10 recovers some latency but can congest.
#include <atomic>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 4: active schemes, congestion + total stretch vs LLPD\n");
  std::printf(
      "# rows: cong-median:<scheme>|cong-p90:<scheme>|stretch-median:<scheme>"
      "|stretch-p90:<scheme>  <llpd>  <value>\n");
  std::vector<Topology> corpus = BenchCorpus();
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeOptimal, kSchemeB4, kSchemeMinMax,
                     kSchemeMinMaxK10};
  opts.workload.num_instances = BenchFullScale() ? 10 : 3;
  std::atomic<size_t> done{0};
  std::vector<TopologyRun> runs =
      RunCorpus(corpus, opts, [&](size_t i) {
        bench::Note("fig04: %s done (%zu/%zu)", corpus[i].name.c_str(),
                    done.fetch_add(1) + 1, corpus.size());
      });
  for (const TopologyRun& run : runs) {
    for (const SchemeSeries& s : run.schemes) {
      PrintSeriesRow("cong-median:" + s.scheme, run.llpd,
                     Median(s.congested_fraction));
      PrintSeriesRow("cong-p90:" + s.scheme, run.llpd,
                     Percentile(s.congested_fraction, 90));
      PrintSeriesRow("stretch-median:" + s.scheme, run.llpd,
                     Median(s.total_stretch));
      PrintSeriesRow("stretch-p90:" + s.scheme, run.llpd,
                     Percentile(s.total_stretch, 90));
    }
  }
  return 0;
}
