// Fig. 21 (repo extension, no paper counterpart): a failure/recovery
// timeline on a zoo topology. The paper evaluates LDR one optimization at a
// time; this bench drives its *controller loop* — and the B4 / SP baselines
// — through the canonical operational what-if: the busiest cable of the
// initial LDR placement fails at minute 3 and is repaired at minute 7 of a
// 12-minute scenario with steady measured traffic.
//
// Per-epoch rows per driver: realized congestion, max stretch, worst
// queueing, route churn, and (LDR) warm/cold LP epochs and solve times.
// Summary rows: reconvergence epochs per event, warm/cold solve medians
// (the same numbers bench_to_json records in BENCH_lp.json "scenario"),
// and the event-free churn maximum, which must be 0.
#include <string>

#include "bench/bench_util.h"
#include "bench/failure_scenario.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 21: LinkDown/LinkUp timeline, LDR vs B4 vs SP\n");
  std::printf(
      "# rows: <metric>:<driver>  <epoch>  <value>  |  "
      "reconverge:<driver>:<event>  <event-epoch>  <epochs-to-clean>\n");

  bench::FailureTimelineFixture fixture = bench::MakeFailureTimeline();
  const Topology& zoo = fixture.zoo;
  if (fixture.busiest == kInvalidLink) {
    std::fprintf(stderr, "fig21: no loaded link to fail\n");
    return 1;
  }
  bench::Note("fig21: %s, failing link %d (%s, util %.2f) + reverse %d",
              zoo.name.c_str(), fixture.busiest,
              zoo.graph.node_name(zoo.graph.link(fixture.busiest).src).c_str(),
              fixture.busiest_util, zoo.graph.ReverseLink(fixture.busiest));

  auto run_driver = [&](const std::string& scheme_id, bool incremental) {
    ScenarioEngineOptions opts;
    opts.scheme_id = scheme_id;
    opts.incremental = incremental;
    ScenarioEngine engine(zoo, fixture.scenario, opts);
    return engine.Run();
  };

  for (const char* id : {"", "B4", "SP"}) {
    ScenarioReport report = run_driver(id, /*incremental=*/true);
    const std::string& label = report.driver;
    bench::Note("fig21: %s done (%zu warm / %zu cold epochs)", label.c_str(),
                report.warm_epochs, report.cold_epochs);
    for (const ScenarioEpochReport& er : report.epochs) {
      PrintSeriesRow("congestion:" + label, er.epoch, er.congested_fraction);
      PrintSeriesRow("max_stretch:" + label, er.epoch, er.max_stretch);
      PrintSeriesRow("queue_ms:" + label, er.epoch, er.worst_queue_ms);
      PrintSeriesRow("churn:" + label, er.epoch, er.route_churn);
      PrintSeriesRow("solve_ms:" + label, er.epoch, er.solve_ms);
      if (label == "LDR") {
        PrintSeriesRow("mux_ok:" + label, er.epoch, er.multiplex_ok ? 1 : 0);
        PrintSeriesRow("warm:" + label, er.epoch, er.warm ? 1 : 0);
      }
    }
    for (const ScenarioEventReport& evr : report.events) {
      std::string kind =
          evr.event.type == ScenarioEvent::Type::kLinkDown ? "down" : "up";
      PrintSeriesRow("reconverge:" + label + ":" + kind, evr.event.epoch,
                     evr.reconverge_epochs);
    }
    PrintSeriesRow("churn_event_free_max:" + label, 0,
                   report.EventFreeChurnMax());

    if (label == "LDR") {
      // Warm-vs-cold epoch A/B: the incremental=false engine rebuilds the
      // LP every epoch; placements must match, only solve time may move.
      ScenarioReport cold = run_driver("", /*incremental=*/false);
      bool parity = PlacementParity(report, cold);
      if (!parity) {
        bench::Note("fig21: WARM/COLD PLACEMENT MISMATCH");
      }
      PrintSeriesRow("solve_warm_median_ms:LDR", 0,
                     report.WarmSolveMsMedian());
      PrintSeriesRow("solve_cold_median_ms:LDR", 0, cold.ColdSolveMsMedian());
      PrintSeriesRow("warm_cold_parity:LDR", 0, parity ? 1 : 0);
      PrintSeriesRow("ksp_evictions:LDR", 0,
                     static_cast<double>(report.ksp_evictions));
    }
  }
  return 0;
}
