// Shared helpers for the figure benches. Every bench prints self-describing
// tab-separated rows: "<series>\t<x>\t<y>" (plus free-form "# ..." comment
// lines), so each paper figure can be re-plotted straight from stdout.
//
// Environment knobs honored across the bench suite:
//
//   LDR_BENCH_SCALE   "small" (default) runs a reduced corpus / instance
//                     count so the whole suite finishes in minutes with the
//                     from-scratch simplex; "full" runs the complete
//                     116-network corpus at paper-scale instance counts.
//   LDR_THREADS       worker count for the parallel corpus runner (default:
//                     hardware concurrency). Instances and topologies fan
//                     out across this many threads with per-task KspCaches;
//                     results are identical for every value, so it is purely
//                     a wall-clock dial. LDR_THREADS=1 forces the serial
//                     path (one shared KspCache, minimum total CPU).
//
// The micro_* benches (google-benchmark) ignore both knobs; their runtime is
// set with --benchmark_min_time and friends. tools/bench_to_json runs a
// fixed subset of all of the above and emits BENCH_lp.json for the perf
// trajectory.
#ifndef LDR_BENCH_BENCH_UTIL_H_
#define LDR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace ldr::bench {

// Progress notes go to stderr so stdout stays machine-readable. The line is
// emitted with a single fputs so notes from parallel corpus workers cannot
// interleave mid-line.
inline void Note(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int len = std::vsnprintf(buf, sizeof(buf) - 1, fmt, args);
  va_end(args);
  if (len < 0) return;
  size_t end = std::min(static_cast<size_t>(len), sizeof(buf) - 2);
  buf[end] = '\n';
  buf[end + 1] = '\0';
  std::fputs(buf, stderr);
}

}  // namespace ldr::bench

#endif  // LDR_BENCH_BENCH_UTIL_H_
