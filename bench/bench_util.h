// Shared helpers for the figure benches. Every bench prints self-describing
// tab-separated rows: "<series>\t<x>\t<y>" (plus free-form "# ..." comment
// lines), so each paper figure can be re-plotted straight from stdout.
//
// Scale: benches default to a reduced corpus / instance count so the whole
// suite runs in minutes with the from-scratch simplex; set
// LDR_BENCH_SCALE=full for the full 116-network corpus.
#ifndef LDR_BENCH_BENCH_UTIL_H_
#define LDR_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>

namespace ldr::bench {

// Progress notes go to stderr so stdout stays machine-readable.
inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace ldr::bench

#endif  // LDR_BENCH_BENCH_UTIL_H_
