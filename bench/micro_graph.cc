// Microbenchmarks for the graph substrate (google-benchmark): Dijkstra,
// Yen's k-shortest paths (the paper notes KSP, not the LP, bottlenecks
// LDR), Dinic max-flow, and the FFT PMF convolution of the multiplexing
// check.
#include <benchmark/benchmark.h>

#include "graph/ksp.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"
#include "topology/generators.h"
#include "traffic/fft.h"
#include "util/random.h"

namespace {

using namespace ldr;

Topology BenchTopology(int w, int h) {
  Rng rng(99);
  return MakeGrid("bench", w, h, 0.3, 0.0, EuropeRegion(), &rng,
                  {100, 100, 0.0});
}

void BM_Dijkstra(benchmark::State& state) {
  Topology t = BenchTopology(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sp = ShortestPath(t.graph, 0,
                           static_cast<NodeId>(t.graph.NodeCount() - 1));
    benchmark::DoNotOptimize(sp);
  }
}
BENCHMARK(BM_Dijkstra)->Arg(4)->Arg(6)->Arg(8);

void BM_YenKsp(benchmark::State& state) {
  Topology t = BenchTopology(5, 5);
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    KspGenerator gen(&t.graph, 0,
                     static_cast<NodeId>(t.graph.NodeCount() - 1));
    benchmark::DoNotOptimize(gen.Get(k - 1));
  }
}
BENCHMARK(BM_YenKsp)->Arg(1)->Arg(5)->Arg(20);

void BM_YenKspCached(benchmark::State& state) {
  // The warm-cache path LDR relies on: repeated Get() is O(1).
  Topology t = BenchTopology(5, 5);
  KspCache cache(&t.graph);
  NodeId dst = static_cast<NodeId>(t.graph.NodeCount() - 1);
  cache.Get(0, dst)->Get(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(0, dst)->Get(19));
  }
}
BENCHMARK(BM_YenKspCached);

void BM_MaxFlow(benchmark::State& state) {
  Topology t = BenchTopology(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double f = MaxFlowGbps(t.graph, 0,
                           static_cast<NodeId>(t.graph.NodeCount() - 1));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_MaxFlow)->Arg(4)->Arg(8);

void BM_FftConvolution(benchmark::State& state) {
  // Convolve `k` aggregate PMFs of 1024 bins each — one link's multiplexing
  // check (paper: "all the needed convolutions in milliseconds").
  size_t k = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> pmfs(k, std::vector<double>(1024));
  for (auto& pmf : pmfs) {
    double total = 0;
    for (double& v : pmf) {
      v = rng.NextDouble();
      total += v;
    }
    for (double& v : pmf) v /= total;
  }
  for (auto _ : state) {
    auto out = ConvolvePmfs(pmfs);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftConvolution)->Arg(2)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
