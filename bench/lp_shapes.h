// Routing-shaped LP generators shared by the solver microbenches
// (bench/micro_lp.cc) and the perf-trajectory tool (tools/bench_to_json).
//
// The shape mirrors what SolveRoutingLp builds for the Fig. 12 program:
// groups of path-fraction columns summing to 1, shared capacity rows with
// per-link overload variables, and a dominant Omax term. "Growth" is one
// Fig. 13 round: a fraction of the groups gain one extra path column. The
// same spec can be materialized three ways — a cold Problem (with or
// without the growth), or a warm Solver that first solves the base and then
// has the growth appended through AddColumn — so warm-vs-cold comparisons
// time exactly the same LP content.
#ifndef LDR_BENCH_LP_SHAPES_H_
#define LDR_BENCH_LP_SHAPES_H_

#include <utility>
#include <vector>

#include "lp/lp.h"
#include "util/random.h"

namespace ldr::bench {

struct RoutingLpSpec {
  struct PathCol {
    int group;
    double obj;
    double demand;
    std::vector<int> hops;  // link indices
  };
  int groups = 0;
  int links = 0;
  double link_cap = 10.0;
  std::vector<PathCol> base;    // three paths per group
  std::vector<PathCol> growth;  // one appended path for ~20% of groups

  static RoutingLpSpec Random(uint64_t seed, int groups, int links) {
    Rng rng(seed);
    RoutingLpSpec spec;
    spec.groups = groups;
    spec.links = links;
    auto make_path = [&](int group, double demand) {
      PathCol c;
      c.group = group;
      c.obj = rng.Uniform(1, 20);
      c.demand = demand;
      for (int h = 0; h < 3; ++h) {
        c.hops.push_back(
            static_cast<int>(rng.NextIndex(static_cast<uint64_t>(links))));
      }
      return c;
    };
    std::vector<double> demand(static_cast<size_t>(groups));
    for (int a = 0; a < groups; ++a) {
      demand[static_cast<size_t>(a)] = rng.Uniform(0.5, 2.0);
      for (int k = 0; k < 3; ++k) {
        spec.base.push_back(make_path(a, demand[static_cast<size_t>(a)]));
      }
    }
    for (int a = 0; a < groups; a += 5) {
      spec.growth.push_back(make_path(a, demand[static_cast<size_t>(a)]));
    }
    return spec;
  }
};

// Cold build: the full problem, optionally including the growth columns
// folded into their groups' equality rows and the link terms.
inline lp::Problem BuildProblem(const RoutingLpSpec& spec, bool with_growth) {
  lp::Problem p;
  int omax = p.AddVariable(1, lp::kInfinity, 1e6);
  std::vector<std::vector<std::pair<int, double>>> link_terms(
      static_cast<size_t>(spec.links));
  std::vector<std::vector<std::pair<int, double>>> eq_terms(
      static_cast<size_t>(spec.groups));
  auto add_col = [&](const RoutingLpSpec::PathCol& c) {
    int v = p.AddVariable(0, 1, c.obj);
    eq_terms[static_cast<size_t>(c.group)].emplace_back(v, 1.0);
    for (int l : c.hops) {
      link_terms[static_cast<size_t>(l)].emplace_back(v, c.demand);
    }
  };
  for (const auto& c : spec.base) add_col(c);
  if (with_growth) {
    for (const auto& c : spec.growth) add_col(c);
  }
  for (auto& terms : eq_terms) {
    p.AddRow(lp::RowType::kEq, 1.0, std::move(terms));
  }
  for (int l = 0; l < spec.links; ++l) {
    int ol = p.AddVariable(1, lp::kInfinity, 1.0);
    auto row = link_terms[static_cast<size_t>(l)];
    row.emplace_back(ol, -spec.link_cap);
    p.AddRow(lp::RowType::kLe, 0.0, std::move(row));
    p.AddRow(lp::RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
  }
  return p;
}

// Warm build: the base problem loaded into a long-lived Solver, with the
// row ids needed to append the growth later.
struct WarmLp {
  lp::Solver solver;
  std::vector<int> eq_rows;    // per group
  std::vector<int> link_rows;  // per link
};

inline WarmLp BuildSolverBase(const RoutingLpSpec& spec,
                              const lp::SolveOptions& options = {}) {
  WarmLp warm;
  warm.solver = lp::Solver(options);
  int omax = warm.solver.AddVariable(1, lp::kInfinity, 1e6);
  std::vector<std::vector<std::pair<int, double>>> link_terms(
      static_cast<size_t>(spec.links));
  std::vector<std::vector<std::pair<int, double>>> eq_terms(
      static_cast<size_t>(spec.groups));
  for (const auto& c : spec.base) {
    int v = warm.solver.AddVariable(0, 1, c.obj);
    eq_terms[static_cast<size_t>(c.group)].emplace_back(v, 1.0);
    for (int l : c.hops) {
      link_terms[static_cast<size_t>(l)].emplace_back(v, c.demand);
    }
  }
  for (auto& terms : eq_terms) {
    warm.eq_rows.push_back(warm.solver.AddRow(lp::RowType::kEq, 1.0, terms));
  }
  for (int l = 0; l < spec.links; ++l) {
    int ol = warm.solver.AddVariable(1, lp::kInfinity, 1.0);
    auto row = link_terms[static_cast<size_t>(l)];
    row.emplace_back(ol, -spec.link_cap);
    warm.link_rows.push_back(
        warm.solver.AddRow(lp::RowType::kLe, 0.0, row));
    warm.solver.AddRow(lp::RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
  }
  return warm;
}

// One growth round appended into the live solver.
inline void AppendGrowth(const RoutingLpSpec& spec, WarmLp* warm) {
  for (const auto& c : spec.growth) {
    std::vector<std::pair<int, double>> coeffs;
    coeffs.emplace_back(warm->eq_rows[static_cast<size_t>(c.group)], 1.0);
    for (int l : c.hops) {
      coeffs.emplace_back(warm->link_rows[static_cast<size_t>(l)], c.demand);
    }
    warm->solver.AddColumn(0, 1, c.obj, coeffs);
  }
}

}  // namespace ldr::bench

#endif  // LDR_BENCH_LP_SHAPES_H_
