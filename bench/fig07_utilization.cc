// Paper Fig. 7: link-utilization CDF on GTS's network (median traffic
// matrix), latency-optimal vs MinMax. The point: most links look identical
// under both schemes; the latency-optimal placement runs its few busiest
// links close to 100% while MinMax leaves ~23% free — the headroom dial's
// two endpoints.
#include <algorithm>

#include "bench/bench_util.h"
#include "graph/shortest_path.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "topology/zoo_corpus.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 7: link utilization CDF, GTS-like median TM\n");
  std::printf("# rows: util:<scheme>  <utilization>  <cdf>  |  mean:<scheme> 0 <mean-util>\n");
  Topology gts;
  for (Topology& t : ZooCorpus()) {
    if (t.name == "GTS-like") gts = std::move(t);
  }
  KspCache cache(&gts.graph);
  WorkloadOptions wopts;
  wopts.num_instances = BenchFullScale() ? 9 : 3;
  auto workloads = MakeScaledWorkloads(gts, &cache, wopts);
  std::vector<double> apsp = AllPairsShortestDelay(gts.graph);

  // Pick the median instance by optimal-scheme total stretch.
  LatencyOptimalScheme opt(&gts.graph, &cache);
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < workloads.size(); ++i) {
    EvalResult e =
        Evaluate(gts.graph, workloads[i], opt.Route(workloads[i]), apsp);
    ranked.emplace_back(e.total_stretch, i);
  }
  std::sort(ranked.begin(), ranked.end());
  const auto& aggs = workloads[ranked[ranked.size() / 2].second];

  for (const char* id : {kSchemeOptimal, kSchemeMinMax}) {
    auto scheme = MakeScheme(id, &gts.graph, &cache);
    RoutingOutcome out = scheme->Route(aggs);
    EvalResult eval = Evaluate(gts.graph, aggs, out, apsp);
    EmpiricalCdf cdf(eval.link_utilization);
    PrintCdf(std::string("util:") + id, cdf, 60);
    PrintSeriesRow(std::string("mean:") + id, 0,
                   Mean(eval.link_utilization));
    PrintSeriesRow(std::string("stretch:") + id, 0, eval.total_stretch);
    bench::Note("fig07: %s mean util %.3f stretch %.3f", id,
                Mean(eval.link_utilization), eval.total_stretch);
  }
  return 0;
}
