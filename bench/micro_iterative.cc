// Microbenchmarks for the full Fig. 13 iterative path-growth loop
// (google-benchmark): IterativeLpRoute on routing-shaped workloads over
// synthetic mesh topologies, warm (incremental solver carried across
// rounds) vs cold (every round rebuilds the LP from scratch), plus the
// controller-style warm re-entry through an LpReuseContext. The KSP cache is
// pre-warmed outside the timed region so the numbers isolate LP work — the
// paper's point is that KSP dominates and is cacheable, and these benches
// track the part that is left.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/ksp.h"
#include "routing/lp_routing.h"
#include "sim/workload.h"
#include "topology/generators.h"
#include "util/random.h"

namespace {

using namespace ldr;

struct IterativeFixture {
  Topology topology;
  KspCache cache;
  std::vector<Aggregate> aggregates;

  explicit IterativeFixture(int w, int h, double load)
      : topology(MakeFixtureTopology(w, h)), cache(&topology.graph) {
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.target_utilization = load;
    wopts.seed = 17;
    aggregates = MakeScaledWorkloads(topology, &cache, wopts)[0];
    // Warm the KSP cache to the depth the loop will reach, so timing
    // isolates LP work from Yen's algorithm.
    IterativeOptions opts;
    IterativeLpRoute(topology.graph, aggregates, &cache, opts);
  }

  static Topology MakeFixtureTopology(int w, int h) {
    Rng rng(5);
    return MakeGrid("bench-grid", w, h, 0.3, 0.0, EuropeRegion(), &rng,
                    {100, 40, 0.3});
  }
};

void RunIterative(benchmark::State& state, bool incremental) {
  int side = static_cast<int>(state.range(0));
  // High load forces several growth rounds — the regime the warm start is
  // for (at trivial load the loop exits after one solve either way).
  IterativeFixture fx(side, side, 0.9);
  IterativeOptions opts;
  opts.incremental = incremental;
  for (auto _ : state) {
    RoutingOutcome out =
        IterativeLpRoute(fx.topology.graph, fx.aggregates, &fx.cache, opts);
    benchmark::DoNotOptimize(out.max_level);
    state.counters["rounds"] = static_cast<double>(out.lp_rounds);
  }
}

void BM_IterativeWarm(benchmark::State& state) { RunIterative(state, true); }
BENCHMARK(BM_IterativeWarm)->Arg(4)->Arg(5)->Arg(6);

void BM_IterativeCold(benchmark::State& state) { RunIterative(state, false); }
BENCHMARK(BM_IterativeCold)->Arg(4)->Arg(5)->Arg(6);

// Controller-style warm re-entry: demands drift a few percent and the
// optimization re-runs. With an LpReuseContext the grown path sets and the
// factorized basis survive; without, every epoch pays the full loop.
void BM_ControllerReentryWarm(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  IterativeFixture fx(side, side, 0.85);
  IterativeOptions opts;
  LpReuseContext reuse;
  IterativeLpRoute(fx.topology.graph, fx.aggregates, &fx.cache, opts, &reuse);
  std::vector<Aggregate> drifted = fx.aggregates;
  uint64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(100 + tick++);
    for (Aggregate& a : drifted) {
      a.demand_gbps *= rng.Uniform(0.97, 1.03);
    }
    state.ResumeTiming();
    RoutingOutcome out = IterativeLpRoute(fx.topology.graph, drifted,
                                          &fx.cache, opts, &reuse);
    benchmark::DoNotOptimize(out.max_level);
  }
}
BENCHMARK(BM_ControllerReentryWarm)->Arg(4)->Arg(5);

void BM_ControllerReentryCold(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  IterativeFixture fx(side, side, 0.85);
  IterativeOptions opts;
  std::vector<Aggregate> drifted = fx.aggregates;
  uint64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(100 + tick++);
    for (Aggregate& a : drifted) {
      a.demand_gbps *= rng.Uniform(0.97, 1.03);
    }
    state.ResumeTiming();
    RoutingOutcome out =
        IterativeLpRoute(fx.topology.graph, drifted, &fx.cache, opts);
    benchmark::DoNotOptimize(out.max_level);
  }
}
BENCHMARK(BM_ControllerReentryCold)->Arg(4)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
