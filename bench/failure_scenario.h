// The Fig. 21 failure/recovery fixture, shared by bench/fig21_failure_timeline
// and tools/bench_to_json's `scenario` section so the JSON records the same
// experiment the figure plots (one definition: same topology, seed, load,
// link choice, and event schedule — the two cannot drift).
//
// Setup: GtsLike with one traffic-matrix instance scaled to 0.5 MinMax
// utilization (the failure must be survivable), steady measured traffic at
// the aggregate demands, and the busiest link of the initial latency-optimal
// placement — the most disruptive single-cable event for this traffic —
// failing in both directions at `down_epoch` and recovering at `up_epoch`.
#ifndef LDR_BENCH_FAILURE_SCENARIO_H_
#define LDR_BENCH_FAILURE_SCENARIO_H_

#include <vector>

#include "routing/lp_routing.h"
#include "sim/evaluate.h"
#include "sim/scenario_engine.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"

namespace ldr::bench {

struct FailureTimelineFixture {
  Topology zoo;
  Scenario scenario;
  LinkId busiest = kInvalidLink;
  double busiest_util = 0;
};

inline FailureTimelineFixture MakeFailureTimeline(int epochs = 12,
                                                  int down_epoch = 3,
                                                  int up_epoch = 7) {
  FailureTimelineFixture f;
  f.zoo = GtsLike();
  KspCache cache(&f.zoo.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.5;
  wopts.seed = 33;
  std::vector<Aggregate> aggs = MakeScaledWorkloads(f.zoo, &cache, wopts)[0];

  IterativeOptions iopts;
  RoutingOutcome initial = IterativeLpRoute(f.zoo.graph, aggs, &cache, iopts);
  std::vector<double> loads = LinkLoads(f.zoo.graph, aggs, initial);
  for (size_t l = 0; l < loads.size(); ++l) {
    double cap = f.zoo.graph.link(static_cast<LinkId>(l)).capacity_gbps;
    if (cap <= 0) continue;
    if (loads[l] / cap > f.busiest_util) {
      f.busiest_util = loads[l] / cap;
      f.busiest = static_cast<LinkId>(l);
    }
  }

  f.scenario.name = "fig21-down-up";
  f.scenario.aggregates = aggs;
  f.scenario.epochs = epochs;
  f.scenario.series_100ms =
      ConstantScenarioTraffic(aggs, epochs, f.scenario.epoch_sec);
  // No-op (event-free scenario) when no link carried load.
  f.scenario.AddLinkFlap(f.zoo.graph, f.busiest, down_epoch, up_epoch);
  return f;
}

}  // namespace ldr::bench

#endif  // LDR_BENCH_FAILURE_SCENARIO_H_
