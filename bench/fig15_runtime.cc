// Paper Fig. 15: runtime CDFs of the optimization on the hardest-to-route
// networks (LLPD > 0.5): LDR with a warm k-shortest-path cache, LDR from a
// cold cache, and the link-based (arc) multi-commodity formulation of the
// same problem. The paper's point: path-based + iterative growth is ~two
// orders of magnitude faster than the link-based LP, and most of LDR's cost
// is Yen's algorithm (hence caching pays).
#include "bench/bench_util.h"
#include "metrics/llpd.h"
#include "routing/link_based.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/workload.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 15: optimization runtime CDFs on LLPD > 0.5 networks\n");
  std::printf("# rows: ldr|ldr-cold|ldr-fullprice|link-based  <ms>  <cdf>\n");
  std::printf(
      "# ldr uses partial (candidate-list) LP pricing, the default; "
      "ldr-fullprice re-runs warm with full Dantzig sweeps as the A/B\n");
  std::vector<Topology> corpus = BenchCorpus();
  bool full = BenchFullScale();
  EmpiricalCdf warm_cdf, cold_cdf, fullprice_cdf, link_cdf;
  int idx = 0;
  for (const Topology& t : corpus) {
    ++idx;
    if (t.graph.NodeCount() > (full ? 64u : 30u)) continue;
    double llpd = ComputeLlpd(t.graph);
    if (llpd <= 0.5) continue;
    bench::Note("fig15: %s (llpd %.2f, %d/%zu)", t.name.c_str(), llpd, idx,
                corpus.size());
    KspCache cache(&t.graph);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    auto workloads = MakeScaledWorkloads(t, &cache, wopts);
    const auto& aggs = workloads[0];

    // Cold cache: fresh KspCache.
    {
      KspCache cold(&t.graph);
      IterativeOptions opts;
      RoutingOutcome out = IterativeLpRoute(t.graph, aggs, &cold, opts);
      cold_cdf.Add(out.solve_ms);
    }
    // Warm: the cache above was already filled by scaling + cold run reuse.
    {
      IterativeOptions opts;
      RoutingOutcome out = IterativeLpRoute(t.graph, aggs, &cache, opts);
      warm_cdf.Add(out.solve_ms);
    }
    // Warm again with full Dantzig pricing: the LP-pricing A/B.
    {
      IterativeOptions opts;
      opts.lp.pricing.mode = lp::PricingMode::kDantzig;
      RoutingOutcome out = IterativeLpRoute(t.graph, aggs, &cache, opts);
      fullprice_cdf.Add(out.solve_ms);
    }
    // Link-based formulation.
    {
      LinkBasedResult r = SolveLinkBased(t.graph, aggs);
      link_cdf.Add(r.solve_ms);
      bench::Note("fig15:   link-based %.0f ms (solved=%d)", r.solve_ms,
                  r.solved ? 1 : 0);
    }
  }
  PrintCdf("ldr", warm_cdf, 50);
  PrintCdf("ldr-cold", cold_cdf, 50);
  PrintCdf("ldr-fullprice", fullprice_cdf, 50);
  PrintCdf("link-based", link_cdf, 50);
  PrintSeriesRow("median-ms:ldr", 0, warm_cdf.ValueAt(0.5));
  PrintSeriesRow("median-ms:ldr-cold", 0, cold_cdf.ValueAt(0.5));
  PrintSeriesRow("median-ms:ldr-fullprice", 0, fullprice_cdf.ValueAt(0.5));
  PrintSeriesRow("median-ms:link-based", 0, link_cdf.ValueAt(0.5));
  return 0;
}
