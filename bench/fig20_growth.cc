// Paper Fig. 20: do routing schemes profit from LLPD-guided topology
// growth? Four networks that are hard to route with low latency get +5%
// links chosen greedily by LLPD gain; we report median and p90 latency
// stretch before and after, per scheme. Only a scheme that can exploit
// path diversity (LDR) fully converts the new links into latency wins; the
// MinMax family may even get *worse* (it load-balances over the new links).
#include <algorithm>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "sim/growth.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 20: stretch before/after +5%% links (picked by LLPD gain)\n");
  std::printf("# rows: median:<scheme>|p90:<scheme>  <stretch-before>  <stretch-after>\n");
  std::vector<Topology> corpus = BenchCorpus();

  // Pick 4 non-clique networks with the highest optimal-routing stretch:
  // ring-like topologies where even optimal placement detours.
  CorpusRunOptions probe;
  probe.scheme_ids = {kSchemeOptimal};
  probe.workload.num_instances = 2;
  probe.max_nodes = 40;
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Topology& t = corpus[i];
    if (t.graph.NodeCount() > probe.max_nodes) continue;
    if (t.name.find("Clique") != std::string::npos ||
        t.name.find("Globalcenter") != std::string::npos) {
      continue;  // cannot add links to a clique
    }
    TopologyRun run = RunTopology(t, probe);
    if (run.schemes.empty()) continue;
    ranked.emplace_back(Median(run.schemes[0].total_stretch), i);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  ranked.resize(std::min<size_t>(4, ranked.size()));

  CorpusRunOptions eval;
  eval.scheme_ids = {kSchemeOptimal, kSchemeB4, kSchemeMinMax,
                     kSchemeMinMaxK10};
  eval.workload.num_instances = BenchFullScale() ? 5 : 2;
  eval.max_nodes = 40;

  for (const auto& [stretch, idx] : ranked) {
    Topology t = corpus[idx];
    bench::Note("fig20: growing %s (optimal stretch %.3f)", t.name.c_str(),
                stretch);
    // The same traffic is routed before and after growth (the paper holds
    // load fixed; only the topology changes).
    KspCache cache(&t.graph);
    auto workloads = MakeScaledWorkloads(t, &cache, eval.workload);
    TopologyRun before = RunTopologyOnWorkloads(t, workloads, eval);
    Rng rng(20202);
    GrowthOptions gopts;
    gopts.max_candidates = BenchFullScale() ? 150 : 60;
    std::vector<GrowthStep> steps = GreedyLlpdAugment(&t, gopts, &rng);
    for (const GrowthStep& s : steps) {
      bench::Note("fig20:   added %d-%d llpd %.3f -> %.3f", s.a, s.b,
                  s.llpd_before, s.llpd_after);
    }
    TopologyRun after = RunTopologyOnWorkloads(t, workloads, eval);
    for (size_t s = 0; s < before.schemes.size(); ++s) {
      const SchemeSeries& pre = before.schemes[s];
      const SchemeSeries& post = after.schemes[s];
      std::string name = pre.scheme == kSchemeOptimal ? "LDR" : pre.scheme;
      PrintSeriesRow("median:" + name, Median(pre.total_stretch),
                     Median(post.total_stretch));
      PrintSeriesRow("p90:" + name, Percentile(pre.total_stretch, 90),
                     Percentile(post.total_stretch, 90));
      // Absolute delay ratio: < 1 means the scheme converted the new links
      // into real latency reduction (immune to the shorter-SP denominator).
      PrintSeriesRow("delay-ratio:" + name, 0,
                     Median(post.weighted_delay_ms) /
                         std::max(1e-9, Median(pre.weighted_delay_ms)));
    }
  }
  return 0;
}
