// Paper Fig. 1: CDF curves of APA for all networks, path-stretch limit 1.4.
// Each topology contributes one CDF (series = topology name). Also prints a
// per-network LLPD summary ("llpd" series) — the scalar reduction of each
// curve used throughout the paper.
#include "bench/bench_util.h"
#include "metrics/llpd.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 1: APA CDF per network (stretch limit 1.4)\n");
  std::printf("# rows: apa:<network>  <apa>  <cum-fraction>  |  llpd  <index>  <llpd>\n");
  std::vector<Topology> corpus = BenchCorpus();
  ApaOptions opts;
  int idx = 0;
  for (const Topology& t : corpus) {
    bench::Note("fig01: %s (%d/%zu)", t.name.c_str(), ++idx, corpus.size());
    std::vector<PairApa> apa = ComputeApa(t.graph, opts);
    EmpiricalCdf cdf;
    for (const PairApa& p : apa) cdf.Add(p.apa);
    PrintCdf("apa:" + t.name, cdf, 40);
    PrintSeriesRow("llpd", idx, LlpdFromApa(apa, opts.apa_threshold));
  }
  return 0;
}
