// Ablation (DESIGN.md §5): LDR's per-aggregate Ba scaling vs the
// alternative of scaling down link capacity when a link fails the
// multiplexing check. The paper argues capacity scaling "is less effective,
// as it prevents other less variable aggregates being chosen to use the
// link instead". We compare total stretch and rounds-to-pass on GTS-like
// with a mix of smooth and bursty aggregates.
#include "bench/bench_util.h"
#include "graph/shortest_path.h"
#include "routing/ldr_controller.h"
#include "sim/corpus_runner.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "traffic/predictor.h"
#include "traffic/trace.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Ablation: per-aggregate Ba scaling vs uniform link headroom\n");
  std::printf("# rows: <strategy>  <metric-id>  <value>\n");
  std::printf("# metric-id: 0=multiplex-ok 1=rounds 2=total-stretch\n");
  Topology gts;
  for (Topology& t : ZooCorpus()) {
    if (t.name == "GTS-like") gts = std::move(t);
  }
  KspCache cache(&gts.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.70;  // tight: multiplexing will matter
  auto aggs = MakeScaledWorkloads(gts, &cache, wopts)[0];
  std::vector<double> apsp = AllPairsShortestDelay(gts.graph);

  // Histories: half the aggregates smooth, half bursty.
  Rng rng(4242);
  std::vector<std::vector<double>> history(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    TraceOptions topts;
    topts.minutes = 2;
    topts.mean_gbps = aggs[a].demand_gbps;
    topts.burst_amplitude = (a % 2 == 0) ? 0.05 : 0.3;
    Rng trng = rng.Fork(a + 1);
    history[a] = SynthesizeTraceGbps(topts, &trng);
  }

  // Strategy A: the paper's — per-aggregate Ba scale-up.
  {
    LdrControllerOptions opts;
    opts.max_rounds = 10;
    LdrControllerResult r =
        RunLdrController(gts.graph, aggs, history, &cache, opts);
    EvalResult e = Evaluate(gts.graph, aggs, r.outcome, apsp);
    PrintSeriesRow("ba-scaling", 0, r.multiplex_ok ? 1 : 0);
    PrintSeriesRow("ba-scaling", 1, r.rounds);
    PrintSeriesRow("ba-scaling", 2, e.total_stretch);
    bench::Note("ba-scaling: ok=%d rounds=%d stretch=%.4f", r.multiplex_ok,
                r.rounds, e.total_stretch);
  }

  // Strategy B: uniform headroom ladder — re-optimize with growing headroom
  // until all links pass the same multiplexing check.
  {
    std::vector<Aggregate> working = aggs;
    // Demand estimates from the same predictor path as the controller.
    for (size_t a = 0; a < working.size(); ++a) {
      auto minutes = PerMinuteMeans(history[a], 10.0);
      MeanRatePredictor pred;
      for (double m : minutes) pred.Update(m);
      working[a].demand_gbps = pred.prediction();
    }
    double headroom = 0.0;
    bool ok = false;
    int rounds = 0;
    RoutingOutcome out;
    while (rounds < 10 && !ok) {
      ++rounds;
      IterativeOptions ropts;
      ropts.lp.headroom = headroom;
      out = IterativeLpRoute(gts.graph, working, &cache, ropts);
      ok = true;
      for (size_t l = 0; l < gts.graph.LinkCount(); ++l) {
        std::vector<WeightedSeries> inputs;
        for (size_t a = 0; a < working.size(); ++a) {
          for (const PathAllocation& pa : out.allocations[a]) {
            if (pa.fraction > 1e-9 &&
                out.store->ContainsLink(pa.path, static_cast<LinkId>(l))) {
              inputs.push_back({&history[a], pa.fraction});
            }
          }
        }
        if (inputs.empty()) continue;
        if (!CheckLinkMultiplexing(
                 inputs, gts.graph.link(static_cast<LinkId>(l)).capacity_gbps)
                 .pass) {
          ok = false;
          break;
        }
      }
      if (!ok) headroom += 0.05;
    }
    EvalResult e = Evaluate(gts.graph, aggs, out, apsp);
    PrintSeriesRow("link-scaling", 0, ok ? 1 : 0);
    PrintSeriesRow("link-scaling", 1, rounds);
    PrintSeriesRow("link-scaling", 2, e.total_stretch);
    bench::Note("link-scaling: ok=%d rounds=%d headroom=%.2f stretch=%.4f",
                ok, rounds, headroom, e.total_stretch);
  }
  return 0;
}
