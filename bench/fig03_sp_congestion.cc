// Paper Fig. 3: fraction of congested source-destination pairs under
// delay-proportional shortest-path routing, vs the network's LLPD. Median
// and 90th percentile across traffic-matrix instances (load 0.77 min-cut,
// locality 1). High-LLPD networks concentrate traffic under SP.
#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 3: SP congestion vs LLPD\n");
  std::printf("# rows: median|p90  <llpd>  <congested-fraction>   (one point per network)\n");
  std::vector<Topology> corpus = BenchCorpus();
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp};
  opts.workload.num_instances = BenchFullScale() ? 10 : 3;
  int idx = 0;
  for (const Topology& t : corpus) {
    bench::Note("fig03: %s (%d/%zu)", t.name.c_str(), ++idx, corpus.size());
    TopologyRun run = RunTopology(t, opts);
    if (run.schemes.empty()) continue;
    const SchemeSeries& sp = run.schemes[0];
    PrintSeriesRow("median", run.llpd, Median(sp.congested_fraction));
    PrintSeriesRow("p90", run.llpd, Percentile(sp.congested_fraction, 90));
  }
  return 0;
}
