// Paper Fig. 3: fraction of congested source-destination pairs under
// delay-proportional shortest-path routing, vs the network's LLPD. Median
// and 90th percentile across traffic-matrix instances (load 0.77 min-cut,
// locality 1). High-LLPD networks concentrate traffic under SP.
#include <atomic>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 3: SP congestion vs LLPD\n");
  std::printf("# rows: median|p90  <llpd>  <congested-fraction>   (one point per network)\n");
  std::vector<Topology> corpus = BenchCorpus();
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp};
  opts.workload.num_instances = BenchFullScale() ? 10 : 3;
  std::atomic<size_t> done{0};
  std::vector<TopologyRun> runs =
      RunCorpus(corpus, opts, [&](size_t i) {
        bench::Note("fig03: %s done (%zu/%zu)", corpus[i].name.c_str(),
                    done.fetch_add(1) + 1, corpus.size());
      });
  for (const TopologyRun& run : runs) {
    if (run.schemes.empty()) continue;
    const SchemeSeries& sp = run.schemes[0];
    PrintSeriesRow("median", run.llpd, Median(sp.congested_fraction));
    PrintSeriesRow("p90", run.llpd, Percentile(sp.congested_fraction, 90));
  }
  return 0;
}
