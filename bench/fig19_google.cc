// Paper Fig. 19: the Fig. 3 shortest-path experiment with Google's
// enterprise WAN added. Our Google-like topology is the highest-LLPD
// network in the corpus and, like the real one, cannot be routed with
// shortest paths alone — while the near-optimal scheme handles it (the
// existence proof that high-LLPD global networks are buildable and
// routable with the right scheme).
//
// The corpus pass fans out across LDR_THREADS via RunCorpus; the Google
// topology runs afterwards (its instances parallelize inside RunTopology).
#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "topology/zoo_corpus.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 19: SP congestion vs LLPD with the Google-like WAN added\n");
  std::printf("# rows: median|p90|google-median|google-p90|google-optimal  <llpd>  <value>\n");
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp};
  opts.workload.num_instances = BenchFullScale() ? 10 : 3;

  std::vector<Topology> corpus = BenchCorpus();
  std::vector<TopologyRun> runs = RunCorpus(corpus, opts, [&](size_t i) {
    bench::Note("fig19: %s (%zu/%zu)", corpus[i].name.c_str(), i + 1,
                corpus.size());
  });
  for (const TopologyRun& run : runs) {
    if (run.schemes.empty()) continue;
    PrintSeriesRow("median", run.llpd, Median(run.schemes[0].congested_fraction));
    PrintSeriesRow("p90", run.llpd,
                   Percentile(run.schemes[0].congested_fraction, 90));
  }

  Topology google = GoogleLike();
  bench::Note("fig19: Google-like (%zu nodes, %zu links)",
              google.graph.NodeCount(), google.graph.LinkCount());
  CorpusRunOptions gopts = opts;
  gopts.scheme_ids = {kSchemeSp, kSchemeB4, kSchemeOptimal};
  gopts.max_nodes = 128;
  TopologyRun grun = RunTopology(google, gopts);
  PrintSeriesRow("google-median", grun.llpd,
                 Median(grun.schemes[0].congested_fraction));
  PrintSeriesRow("google-p90", grun.llpd,
                 Percentile(grun.schemes[0].congested_fraction, 90));
  // B4 performs nearly optimally on this topology (paper §8).
  PrintSeriesRow("google-b4-congestion", grun.llpd,
                 Median(grun.schemes[1].congested_fraction));
  PrintSeriesRow("google-b4-stretch", grun.llpd,
                 Median(grun.schemes[1].total_stretch));
  PrintSeriesRow("google-optimal-stretch", grun.llpd,
                 Median(grun.schemes[2].total_stretch));
  return 0;
}
