// Paper Fig. 16 (a-c): CDFs of the maximum path stretch per traffic matrix:
// (a) networks with LLPD < 0.5, no headroom; (b) LLPD > 0.5, no headroom;
// (c) LLPD > 0.5, 10% headroom. Where the paper's CDF fails to reach 1.0
// the scheme could not fit the traffic; we print that as a separate
// "fit:<scheme>" fraction per panel.
//
// Two corpus-wide passes, both fanned out across LDR_THREADS by RunCorpus:
// the no-headroom pass over everything, then the 10%-headroom pass over the
// high-LLPD group the first pass identified.
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

namespace {

struct Panel {
  std::string name;
  std::map<std::string, ldr::EmpiricalCdf> stretch;
  std::map<std::string, std::pair<int, int>> fit;  // (feasible, total)
};

void Accumulate(const ldr::TopologyRun& run, Panel* panel) {
  for (const ldr::SchemeSeries& s : run.schemes) {
    for (size_t i = 0; i < s.max_stretch.size(); ++i) {
      auto& fit = panel->fit[s.scheme];
      ++fit.second;
      if (s.feasible[i]) {
        ++fit.first;
        panel->stretch[s.scheme].Add(s.max_stretch[i]);
      }
    }
  }
}

}  // namespace

int main() {
  using namespace ldr;
  std::printf("# Fig 16: max path stretch CDFs by LLPD group and headroom\n");
  std::printf("# rows: <panel>:<scheme>  <max-stretch>  <cdf>  |  fit:<panel>:<scheme>  0  <fraction>\n");
  std::vector<Topology> corpus = BenchCorpus();
  Panel a{"low-llpd-h0", {}, {}};
  Panel b{"high-llpd-h0", {}, {}};
  Panel c{"high-llpd-h10", {}, {}};

  CorpusRunOptions base;
  base.workload.num_instances = BenchFullScale() ? 5 : 2;

  // No-headroom pass over the full corpus: B4, Optimal(=LDR h0), MinMax,
  // MinMaxK10.
  CorpusRunOptions h0 = base;
  h0.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax, kSchemeMinMaxK10};
  std::vector<TopologyRun> runs0 = RunCorpus(corpus, h0, [&](size_t i) {
    bench::Note("fig16 h0: %s (%zu/%zu)", corpus[i].name.c_str(), i + 1,
                corpus.size());
  });

  std::vector<Topology> high_llpd;
  for (size_t i = 0; i < runs0.size(); ++i) {
    if (runs0[i].schemes.empty()) continue;  // skipped by max_nodes
    Accumulate(runs0[i], runs0[i].llpd < 0.5 ? &a : &b);
    if (runs0[i].llpd >= 0.5) high_llpd.push_back(corpus[i]);
  }

  // 10% headroom pass for the high-LLPD group only (panel c).
  CorpusRunOptions h10 = base;
  h10.scheme_ids = {kSchemeB4Headroom, kSchemeLdr10, kSchemeMinMax,
                    kSchemeMinMaxK10};
  std::vector<TopologyRun> runs1 = RunCorpus(high_llpd, h10, [&](size_t i) {
    bench::Note("fig16 h10: %s (%zu/%zu)", high_llpd[i].name.c_str(), i + 1,
                high_llpd.size());
  });
  for (const TopologyRun& run : runs1) Accumulate(run, &c);

  for (Panel* panel : {&a, &b, &c}) {
    for (auto& [scheme, cdf] : panel->stretch) {
      PrintCdf(panel->name + ":" + scheme, cdf, 50);
    }
    for (auto& [scheme, fit] : panel->fit) {
      PrintSeriesRow("fit:" + panel->name + ":" + scheme, 0,
                     fit.second == 0 ? 0
                                     : static_cast<double>(fit.first) /
                                           static_cast<double>(fit.second));
    }
  }
  return 0;
}
