// Paper Fig. 16 (a-c): CDFs of the maximum path stretch per traffic matrix:
// (a) networks with LLPD < 0.5, no headroom; (b) LLPD > 0.5, no headroom;
// (c) LLPD > 0.5, 10% headroom. Where the paper's CDF fails to reach 1.0
// the scheme could not fit the traffic; we print that as a separate
// "fit:<scheme>" fraction per panel.
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

namespace {

struct Panel {
  std::string name;
  std::map<std::string, ldr::EmpiricalCdf> stretch;
  std::map<std::string, std::pair<int, int>> fit;  // (feasible, total)
};

}  // namespace

int main() {
  using namespace ldr;
  std::printf("# Fig 16: max path stretch CDFs by LLPD group and headroom\n");
  std::printf("# rows: <panel>:<scheme>  <max-stretch>  <cdf>  |  fit:<panel>:<scheme>  0  <fraction>\n");
  std::vector<Topology> corpus = BenchCorpus();
  Panel a{"low-llpd-h0", {}, {}};
  Panel b{"high-llpd-h0", {}, {}};
  Panel c{"high-llpd-h10", {}, {}};

  CorpusRunOptions base;
  base.workload.num_instances = BenchFullScale() ? 5 : 2;
  int idx = 0;
  for (const Topology& t : corpus) {
    bench::Note("fig16: %s (%d/%zu)", t.name.c_str(), ++idx, corpus.size());
    // No-headroom pass: B4, Optimal(=LDR h0), MinMax, MinMaxK10.
    CorpusRunOptions h0 = base;
    h0.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax,
                     kSchemeMinMaxK10};
    TopologyRun run0 = RunTopology(t, h0);
    if (run0.schemes.empty()) continue;
    Panel& panel = run0.llpd < 0.5 ? a : b;
    for (const SchemeSeries& s : run0.schemes) {
      for (size_t i = 0; i < s.max_stretch.size(); ++i) {
        auto& fit = panel.fit[s.scheme];
        ++fit.second;
        if (s.feasible[i]) {
          ++fit.first;
          panel.stretch[s.scheme].Add(s.max_stretch[i]);
        }
      }
    }
    // 10% headroom pass for the high-LLPD group only (panel c).
    if (run0.llpd >= 0.5) {
      CorpusRunOptions h10 = base;
      h10.scheme_ids = {kSchemeB4Headroom, kSchemeLdr10, kSchemeMinMax,
                        kSchemeMinMaxK10};
      TopologyRun run1 = RunTopology(t, h10);
      for (const SchemeSeries& s : run1.schemes) {
        for (size_t i = 0; i < s.max_stretch.size(); ++i) {
          auto& fit = c.fit[s.scheme];
          ++fit.second;
          if (s.feasible[i]) {
            ++fit.first;
            c.stretch[s.scheme].Add(s.max_stretch[i]);
          }
        }
      }
    }
  }
  for (Panel* panel : {&a, &b, &c}) {
    for (auto& [scheme, cdf] : panel->stretch) {
      PrintCdf(panel->name + ":" + scheme, cdf, 50);
    }
    for (auto& [scheme, fit] : panel->fit) {
      PrintSeriesRow("fit:" + panel->name + ":" + scheme, 0,
                     fit.second == 0 ? 0
                                     : static_cast<double>(fit.first) /
                                           static_cast<double>(fit.second));
    }
  }
  return 0;
}
