// Paper Fig. 10: scatter of the per-minute standard deviation of 1 ms rates
// at minute t vs minute t+1, across traces. Points cluster on x = y: an
// aggregate's sub-second variability is stable minute-to-minute, so a
// controller can characterize it and predict statistical multiplexing.
#include "bench/bench_util.h"
#include "traffic/trace.h"
#include "util/random.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 10: sigma(t) vs sigma(t+1) of 1ms rates, one series per trace\n");
  std::printf("# rows: trace<i>  <sigma_t>  <sigma_t+1>\n");
  Rng rng(101010);
  const int kTraces = 8;
  for (int i = 0; i < kTraces; ++i) {
    TraceOptions opts;
    opts.minutes = 12;
    opts.samples_per_sec = 1000;  // 1 ms bins
    opts.mean_gbps = rng.Uniform(0.8, 3.0);
    opts.burst_amplitude = rng.Uniform(0.1, 0.5);
    Rng trng = rng.Fork(static_cast<uint64_t>(i + 1));
    std::vector<double> trace = SynthesizeTraceGbps(opts, &trng);
    std::vector<double> sigmas = PerMinuteStdDevs(trace, opts.samples_per_sec);
    for (size_t t = 0; t + 1 < sigmas.size(); ++t) {
      PrintSeriesRow("trace" + std::to_string(i), sigmas[t], sigmas[t + 1]);
    }
    bench::Note("fig10: trace %d sigma range [%.3f, %.3f]", i,
                MinOf(sigmas), MaxOf(sigmas));
  }
  return 0;
}
