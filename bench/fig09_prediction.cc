// Paper Fig. 9: CDF of measured/predicted mean bitrate under Algorithm 1,
// across 40 synthetic one-hour backbone traces (the CAIDA stand-in; see
// DESIGN.md). Constant traffic would sit at 1/1.1 = 0.91; the paper's
// traces exceed the prediction only ~0.5% of the time and never by > 10%.
#include "bench/bench_util.h"
#include "traffic/predictor.h"
#include "traffic/trace.h"
#include "util/random.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 9: CDF of measured/predicted mean rate (Algorithm 1)\n");
  std::printf("# rows: ratio  <measured/predicted>  <cdf>\n");
  Rng rng(90909);
  EmpiricalCdf cdf;
  size_t exceed = 0, total = 0;
  const int kTraces = 40;
  for (int i = 0; i < kTraces; ++i) {
    TraceOptions opts;
    opts.minutes = 60;
    opts.mean_gbps = rng.Uniform(1.0, 3.0);  // CAIDA links ran 1-3 Gbps
    opts.samples_per_sec = 10;
    Rng trng = rng.Fork(static_cast<uint64_t>(i + 1));
    std::vector<double> trace = SynthesizeTraceGbps(opts, &trng);
    std::vector<double> means = PerMinuteMeans(trace, opts.samples_per_sec);
    for (double r : PredictionRatios(means)) {
      cdf.Add(r);
      ++total;
      if (r > 1.0) ++exceed;
    }
  }
  PrintCdf("ratio", cdf, 80);
  PrintSeriesRow("exceed-fraction", 0,
                 static_cast<double>(exceed) / static_cast<double>(total));
  bench::Note("fig09: %zu minutes, exceed fraction %.4f", total,
              static_cast<double>(exceed) / static_cast<double>(total));
  return 0;
}
