// Survivability under correlated failures (repo extension, no paper
// counterpart): seeded randomized failure campaigns — SRLG conduit cuts,
// node outages, maintenance windows with a drain epoch, cable flaps — over a
// zoo-corpus slice, LDR vs B4 vs SP, with the closed-loop (CUBIC-backoff)
// demand model engaged.
//
// Per-campaign rows per driver: availability (fraction of epochs with a
// valid, uncongested placement), worst optimizer-view congestion, worst
// realized queueing, the highest fallback-ladder rung, and the per-event
// reconvergence-epoch distribution. LDR_BENCH_SCALE=full widens the corpus
// slice and seed count.
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "sim/campaign.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  const char* scale = std::getenv("LDR_BENCH_SCALE");
  const bool full = scale != nullptr && std::string(scale) == "full";
  const size_t topologies = full ? 16 : 8;
  const uint64_t seeds = full ? 8 : 5;

  std::printf("# Survivability: seeded correlated-failure campaigns\n");
  std::printf(
      "# rows: <metric>:<driver>:<topology>  <seed>  <value>  |  "
      "reconverge:<driver>:<topology>:<seed>  <event#>  <epochs>\n");

  for (const Topology& topo : SurvivabilityCorpus(topologies)) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      for (const char* id : {"", "B4", "SP"}) {
        CampaignRunResult r = RunCampaign(topo, seed, id);
        const std::string tag = r.driver + ":" + topo.name;
        double s = static_cast<double>(seed);
        PrintSeriesRow("availability:" + tag, s, r.availability);
        PrintSeriesRow("worst_congestion:" + tag, s, r.worst_congestion);
        PrintSeriesRow("worst_queue_ms:" + tag, s, r.worst_queue_ms);
        PrintSeriesRow("max_rung:" + tag, s, r.max_rung);
        PrintSeriesRow("events_applied:" + tag, s,
                       static_cast<double>(r.events_applied));
        PrintSeriesRow("min_demand_scale:" + tag, s, r.min_demand_scale);
        PrintSeriesRow("valid_every_epoch:" + tag, s,
                       r.valid_every_epoch ? 1 : 0);
        const std::string rtag =
            "reconverge:" + tag + ":" + std::to_string(seed);
        for (size_t e = 0; e < r.reconverge_epochs.size(); ++e) {
          PrintSeriesRow(rtag, static_cast<double>(e),
                         r.reconverge_epochs[e]);
        }
        if (!r.valid_every_epoch) {
          std::fprintf(stderr,
                       "survivability: INVALID placement installed (%s %s "
                       "seed %llu)\n",
                       r.driver.c_str(), topo.name.c_str(),
                       static_cast<unsigned long long>(seed));
          return 1;
        }
      }
    }
    bench::Note("survivability: %s done", topo.name.c_str());
  }
  return 0;
}
