// Paper Fig. 18: median max flow stretch as traffic locality varies from 0
// (long-haul heavy) to 2 (local heavy), on high-LLPD networks at load 0.77.
// Low locality hurts B4 most (it congests the wide-area links first); all
// schemes improve as locality rises; MinMax flattens past ~1.5.
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 18: median max stretch vs locality, networks with LLPD > 0.5\n");
  std::printf("# rows: <scheme>  <locality>  <median-max-stretch>\n");
  std::vector<Topology> corpus = BenchCorpus();
  const double localities[] = {0.0, 0.5, 1.0, 1.5, 2.0};
  std::map<double, std::map<std::string, std::vector<double>>> samples;
  int idx = 0;
  for (const Topology& t : corpus) {
    ++idx;
    if (t.graph.NodeCount() > 64) continue;
    double llpd = ComputeLlpd(t.graph);
    if (llpd <= 0.5) continue;
    bench::Note("fig18: %s (llpd %.2f, %d/%zu)", t.name.c_str(), llpd, idx,
                corpus.size());
    for (double locality : localities) {
      CorpusRunOptions opts;
      opts.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax,
                         kSchemeMinMaxK10};
      opts.workload.num_instances = BenchFullScale() ? 5 : 2;
      opts.workload.locality = locality;
      TopologyRun run = RunTopology(t, opts);
      for (const SchemeSeries& s : run.schemes) {
        std::string name = s.scheme == kSchemeOptimal ? "LDR" : s.scheme;
        for (double ms : s.max_stretch) {
          samples[locality][name].push_back(ms);
        }
      }
    }
  }
  for (const auto& [locality, by_scheme] : samples) {
    for (const auto& [scheme, xs] : by_scheme) {
      PrintSeriesRow(scheme, locality, Median(xs));
    }
  }
  return 0;
}
