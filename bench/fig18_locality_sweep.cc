// Paper Fig. 18: median max flow stretch as traffic locality varies from 0
// (long-haul heavy) to 2 (local heavy), on high-LLPD networks at load 0.77.
// Low locality hurts B4 most (it congests the wide-area links first); all
// schemes improve as locality rises; MinMax flattens past ~1.5.
//
// The LLPD pre-filter and each per-locality sweep fan out across
// LDR_THREADS (ParallelFor / RunCorpus) instead of walking topologies
// serially.
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"
#include "util/thread_pool.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 18: median max stretch vs locality, networks with LLPD > 0.5\n");
  std::printf("# rows: <scheme>  <locality>  <median-max-stretch>\n");
  std::vector<Topology> corpus = BenchCorpus();
  const double localities[] = {0.0, 0.5, 1.0, 1.5, 2.0};

  // Parallel LLPD pre-filter: keep the high-diversity group.
  std::vector<double> llpd(corpus.size(), 0.0);
  ParallelFor(corpus.size(), [&](size_t i) {
    if (corpus[i].graph.NodeCount() <= 64) {
      llpd[i] = ComputeLlpd(corpus[i].graph);
    }
  });
  std::vector<Topology> high;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].graph.NodeCount() > 64 || llpd[i] <= 0.5) continue;
    bench::Note("fig18: %s (llpd %.2f)", corpus[i].name.c_str(), llpd[i]);
    high.push_back(corpus[i]);
  }

  std::map<double, std::map<std::string, std::vector<double>>> samples;
  for (double locality : localities) {
    CorpusRunOptions opts;
    opts.scheme_ids = {kSchemeB4, kSchemeOptimal, kSchemeMinMax,
                       kSchemeMinMaxK10};
    opts.workload.num_instances = BenchFullScale() ? 5 : 2;
    opts.workload.locality = locality;
    std::vector<TopologyRun> runs = RunCorpus(high, opts, [&](size_t i) {
      bench::Note("fig18 locality %.1f: %s (%zu/%zu)", locality,
                  high[i].name.c_str(), i + 1, high.size());
    });
    for (const TopologyRun& run : runs) {
      for (const SchemeSeries& s : run.schemes) {
        std::string name = s.scheme == kSchemeOptimal ? "LDR" : s.scheme;
        for (double ms : s.max_stretch) {
          samples[locality][name].push_back(ms);
        }
      }
    }
  }
  for (const auto& [locality, by_scheme] : samples) {
    for (const auto& [scheme, xs] : by_scheme) {
      PrintSeriesRow(scheme, locality, Median(xs));
    }
  }
  return 0;
}
