// Ablation (paper §8 "generality of building blocks"): MinMax with a fixed
// k = 10 path set vs MinMax with LDR-style iteratively grown path sets. The
// paper predicts growth "should help MinMax avoid needless detours" (and
// congestion on very diverse networks, where 10 fixed paths are too few).
#include "bench/bench_util.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Ablation: MinMaxK10 (fixed paths) vs MinMax (grown paths)\n");
  std::printf("# rows: <scheme>-stretch|<scheme>-fit  <llpd>  <value>\n");
  std::vector<Topology> corpus = BenchCorpus();
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeMinMax, kSchemeMinMaxK10};
  opts.workload.num_instances = BenchFullScale() ? 5 : 2;
  opts.workload.target_utilization = 0.85;  // stress path choice
  int idx = 0;
  for (const Topology& t : corpus) {
    bench::Note("ablation-minmax: %s (%d/%zu)", t.name.c_str(), ++idx,
                corpus.size());
    TopologyRun run = RunTopology(t, opts);
    for (const SchemeSeries& s : run.schemes) {
      double fit = 0;
      for (bool f : s.feasible) fit += f ? 1 : 0;
      fit /= static_cast<double>(s.feasible.size());
      PrintSeriesRow(s.scheme + "-stretch", run.llpd, Median(s.total_stretch));
      PrintSeriesRow(s.scheme + "-fit", run.llpd, fit);
    }
  }
  return 0;
}
