// Microbenchmarks for the simplex LP solver (google-benchmark): random
// covering LPs and routing-shaped LPs at several sizes. These track the
// solver cost that dominates LDR's per-iteration work.
#include <benchmark/benchmark.h>

#include "bench/lp_shapes.h"
#include "lp/lp.h"
#include "util/random.h"

namespace {

using ldr::Rng;
using namespace ldr::lp;

void BM_LpCovering(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int m = n / 3;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(42);
    Problem p;
    std::vector<int> vars(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) vars[static_cast<size_t>(j)] = p.AddVariable(0, 1, 1);
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> row;
      for (int t = 0; t < 8; ++t) {
        row.emplace_back(vars[rng.NextIndex(static_cast<uint64_t>(n))], 1.0);
      }
      p.AddRow(RowType::kGe, 1.0, row);
    }
    state.ResumeTiming();
    Solution s = Solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpCovering)->Arg(100)->Arg(300)->Arg(1000);

// Routing-shaped LP: groups of path fractions summing to 1, capacity rows.
void BM_LpRoutingShape(benchmark::State& state) {
  int aggregates = static_cast<int>(state.range(0));
  int links = aggregates / 2;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    Problem p;
    int omax = p.AddVariable(1, kInfinity, 1e6);
    std::vector<std::vector<std::pair<int, double>>> link_terms(
        static_cast<size_t>(links));
    for (int a = 0; a < aggregates; ++a) {
      std::vector<std::pair<int, double>> sum_row;
      for (int k = 0; k < 3; ++k) {
        int v = p.AddVariable(0, 1, rng.Uniform(1, 20));
        sum_row.emplace_back(v, 1.0);
        for (int h = 0; h < 3; ++h) {
          link_terms[rng.NextIndex(static_cast<uint64_t>(links))].emplace_back(
              v, rng.Uniform(0.5, 2.0));
        }
      }
      p.AddRow(RowType::kEq, 1.0, sum_row);
    }
    for (int l = 0; l < links; ++l) {
      int ol = p.AddVariable(1, kInfinity, 1.0);
      auto row = link_terms[static_cast<size_t>(l)];
      row.emplace_back(ol, -10.0);
      p.AddRow(RowType::kLe, 0.0, row);
      p.AddRow(RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
    }
    state.ResumeTiming();
    Solution s = Solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpRoutingShape)->Arg(50)->Arg(150)->Arg(400);

// --- warm vs cold re-solve --------------------------------------------------
// The Fig. 13 loop's inner operation: a solved routing LP gains one round of
// path columns and is re-solved. Warm keeps the Solver (and its optimal
// basis) alive and appends through AddColumn; cold rebuilds the grown
// problem from scratch and solves it from the slack basis. Same LP content
// both ways (see bench/lp_shapes.h); the ratio is the payoff of the
// incremental core.

// Arg(0) is the aggregate count; Arg(1) selects pricing: 0 = partial
// (candidate list, the default), 1 = full Dantzig sweeps — the cold-vs-warm
// and full-vs-partial A/B grid in one benchmark family.
void BM_LpResolveWarm(benchmark::State& state) {
  int aggregates = static_cast<int>(state.range(0));
  int links = aggregates / 2;
  SolveOptions so;
  so.pricing.mode =
      state.range(1) == 0 ? PricingMode::kPartial : PricingMode::kDantzig;
  for (auto _ : state) {
    state.PauseTiming();
    auto spec = ldr::bench::RoutingLpSpec::Random(7, aggregates, links);
    ldr::bench::WarmLp warm = ldr::bench::BuildSolverBase(spec, so);
    Solution base = warm.solver.Solve();  // untimed: basis the round inherits
    state.ResumeTiming();
    ldr::bench::AppendGrowth(spec, &warm);
    Solution s = warm.solver.Solve();
    benchmark::DoNotOptimize(s.objective);
    benchmark::DoNotOptimize(base.objective);
  }
}
BENCHMARK(BM_LpResolveWarm)
    ->Args({50, 0})
    ->Args({150, 0})
    ->Args({400, 0})
    ->Args({50, 1})
    ->Args({150, 1})
    ->Args({400, 1});

// Cold solves of the same routing shape under both pricing modes: the pure
// pricing A/B, without warm-start effects.
void BM_LpPricingCold(benchmark::State& state) {
  int aggregates = static_cast<int>(state.range(0));
  int links = aggregates / 2;
  SolveOptions so;
  so.pricing.mode =
      state.range(1) == 0 ? PricingMode::kPartial : PricingMode::kDantzig;
  for (auto _ : state) {
    state.PauseTiming();
    auto spec = ldr::bench::RoutingLpSpec::Random(7, aggregates, links);
    Problem p = ldr::bench::BuildProblem(spec, /*with_growth=*/true);
    state.ResumeTiming();
    Solution s = Solve(p, so);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpPricingCold)
    ->Args({50, 0})
    ->Args({150, 0})
    ->Args({400, 0})
    ->Args({50, 1})
    ->Args({150, 1})
    ->Args({400, 1});

// AddColumn alone (no re-solve): one Fig. 13 growth round appended into a
// solved warm solver. Under revised-simplex storage there is no tableau
// column to price the append into, so this is O(1) per column regardless of
// the row count — the old representation paid O(m·nnz) here.
void BM_LpAddColumnRound(benchmark::State& state) {
  int aggregates = static_cast<int>(state.range(0));
  int links = aggregates / 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto spec = ldr::bench::RoutingLpSpec::Random(7, aggregates, links);
    ldr::bench::WarmLp warm = ldr::bench::BuildSolverBase(spec);
    Solution base = warm.solver.Solve();
    benchmark::DoNotOptimize(base.objective);
    state.ResumeTiming();
    ldr::bench::AppendGrowth(spec, &warm);
    benchmark::DoNotOptimize(warm.solver.VariableCount());
  }
}
// Iterations pinned: the timed region is microseconds while each iteration
// rebuilds and solves the base untimed — letting min_time pick the count
// would re-run that setup thousands of times.
BENCHMARK(BM_LpAddColumnRound)->Arg(50)->Arg(150)->Arg(400)->Iterations(32);

void BM_LpResolveCold(benchmark::State& state) {
  int aggregates = static_cast<int>(state.range(0));
  int links = aggregates / 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto spec = ldr::bench::RoutingLpSpec::Random(7, aggregates, links);
    state.ResumeTiming();
    Problem p = ldr::bench::BuildProblem(spec, /*with_growth=*/true);
    Solution s = Solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpResolveCold)->Arg(50)->Arg(150)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
