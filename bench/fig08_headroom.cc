// Paper Fig. 8: median change in total delay as uniform headroom increases
// ({0, 11, 23, 40}%), with the network loaded lighter (min-cut at 60%, so
// the TM could grow 1.65x). The paper's point: even high-LLPD networks pay
// little latency for moderate headroom; only near the MinMax extreme (40%)
// does delay climb.
#include "bench/bench_util.h"
#include "graph/shortest_path.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "util/stats.h"

int main() {
  using namespace ldr;
  std::printf("# Fig 8: median total-delay stretch vs LLPD at several headrooms\n");
  std::printf("# rows: h<percent>  <llpd>  <median-stretch>\n");
  std::vector<Topology> corpus = BenchCorpus();
  const double headrooms[] = {0.0, 0.11, 0.23, 0.40};
  int idx = 0;
  for (const Topology& t : corpus) {
    bench::Note("fig08: %s (%d/%zu)", t.name.c_str(), ++idx, corpus.size());
    if (t.graph.NodeCount() > 64) continue;
    double llpd = ComputeLlpd(t.graph);
    KspCache cache(&t.graph);
    WorkloadOptions wopts;
    wopts.num_instances = BenchFullScale() ? 5 : 2;
    wopts.target_utilization = 0.60;
    auto workloads = MakeScaledWorkloads(t, &cache, wopts);
    std::vector<double> apsp = AllPairsShortestDelay(t.graph);
    for (double h : headrooms) {
      LatencyOptimalScheme scheme(&t.graph, &cache, h);
      std::vector<double> stretches;
      for (const auto& aggs : workloads) {
        EvalResult e = Evaluate(t.graph, aggs, scheme.Route(aggs), apsp);
        stretches.push_back(e.total_stretch);
      }
      char series[32];
      std::snprintf(series, sizeof(series), "h%d",
                    static_cast<int>(h * 100 + 0.5));
      PrintSeriesRow(series, llpd, Median(stretches));
    }
  }
  return 0;
}
