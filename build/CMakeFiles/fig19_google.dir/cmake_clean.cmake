file(REMOVE_RECURSE
  "CMakeFiles/fig19_google.dir/bench/fig19_google.cc.o"
  "CMakeFiles/fig19_google.dir/bench/fig19_google.cc.o.d"
  "fig19_google"
  "fig19_google.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_google.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
