# Empty dependencies file for fig19_google.
# This may be replaced when dependencies are built.
