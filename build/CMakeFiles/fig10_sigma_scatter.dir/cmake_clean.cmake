file(REMOVE_RECURSE
  "CMakeFiles/fig10_sigma_scatter.dir/bench/fig10_sigma_scatter.cc.o"
  "CMakeFiles/fig10_sigma_scatter.dir/bench/fig10_sigma_scatter.cc.o.d"
  "fig10_sigma_scatter"
  "fig10_sigma_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sigma_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
