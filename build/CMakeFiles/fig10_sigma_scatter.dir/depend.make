# Empty dependencies file for fig10_sigma_scatter.
# This may be replaced when dependencies are built.
