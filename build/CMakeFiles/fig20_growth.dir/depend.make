# Empty dependencies file for fig20_growth.
# This may be replaced when dependencies are built.
