file(REMOVE_RECURSE
  "CMakeFiles/fig20_growth.dir/bench/fig20_growth.cc.o"
  "CMakeFiles/fig20_growth.dir/bench/fig20_growth.cc.o.d"
  "fig20_growth"
  "fig20_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
