file(REMOVE_RECURSE
  "CMakeFiles/fig03_sp_congestion.dir/bench/fig03_sp_congestion.cc.o"
  "CMakeFiles/fig03_sp_congestion.dir/bench/fig03_sp_congestion.cc.o.d"
  "fig03_sp_congestion"
  "fig03_sp_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sp_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
