# Empty dependencies file for fig03_sp_congestion.
# This may be replaced when dependencies are built.
