# Empty dependencies file for micro_lp.
# This may be replaced when dependencies are built.
