file(REMOVE_RECURSE
  "CMakeFiles/micro_lp.dir/bench/micro_lp.cc.o"
  "CMakeFiles/micro_lp.dir/bench/micro_lp.cc.o.d"
  "micro_lp"
  "micro_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
