# Empty dependencies file for graphml_test.
# This may be replaced when dependencies are built.
