file(REMOVE_RECURSE
  "CMakeFiles/graphml_test.dir/tests/graphml_test.cc.o"
  "CMakeFiles/graphml_test.dir/tests/graphml_test.cc.o.d"
  "graphml_test"
  "graphml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
