file(REMOVE_RECURSE
  "CMakeFiles/zoo_explorer.dir/examples/zoo_explorer.cpp.o"
  "CMakeFiles/zoo_explorer.dir/examples/zoo_explorer.cpp.o.d"
  "zoo_explorer"
  "zoo_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
