# Empty dependencies file for zoo_explorer.
# This may be replaced when dependencies are built.
