file(REMOVE_RECURSE
  "CMakeFiles/headroom_dial.dir/examples/headroom_dial.cpp.o"
  "CMakeFiles/headroom_dial.dir/examples/headroom_dial.cpp.o.d"
  "headroom_dial"
  "headroom_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headroom_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
