# Empty dependencies file for headroom_dial.
# This may be replaced when dependencies are built.
