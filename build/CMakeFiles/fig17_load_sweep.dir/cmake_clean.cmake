file(REMOVE_RECURSE
  "CMakeFiles/fig17_load_sweep.dir/bench/fig17_load_sweep.cc.o"
  "CMakeFiles/fig17_load_sweep.dir/bench/fig17_load_sweep.cc.o.d"
  "fig17_load_sweep"
  "fig17_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
