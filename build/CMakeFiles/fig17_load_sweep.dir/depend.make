# Empty dependencies file for fig17_load_sweep.
# This may be replaced when dependencies are built.
