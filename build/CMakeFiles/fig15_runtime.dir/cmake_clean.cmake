file(REMOVE_RECURSE
  "CMakeFiles/fig15_runtime.dir/bench/fig15_runtime.cc.o"
  "CMakeFiles/fig15_runtime.dir/bench/fig15_runtime.cc.o.d"
  "fig15_runtime"
  "fig15_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
