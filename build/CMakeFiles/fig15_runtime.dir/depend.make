# Empty dependencies file for fig15_runtime.
# This may be replaced when dependencies are built.
