file(REMOVE_RECURSE
  "CMakeFiles/fig04_active_schemes.dir/bench/fig04_active_schemes.cc.o"
  "CMakeFiles/fig04_active_schemes.dir/bench/fig04_active_schemes.cc.o.d"
  "fig04_active_schemes"
  "fig04_active_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_active_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
