# Empty dependencies file for fig04_active_schemes.
# This may be replaced when dependencies are built.
