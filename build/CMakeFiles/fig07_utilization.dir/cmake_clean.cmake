file(REMOVE_RECURSE
  "CMakeFiles/fig07_utilization.dir/bench/fig07_utilization.cc.o"
  "CMakeFiles/fig07_utilization.dir/bench/fig07_utilization.cc.o.d"
  "fig07_utilization"
  "fig07_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
