# Empty dependencies file for fig07_utilization.
# This may be replaced when dependencies are built.
