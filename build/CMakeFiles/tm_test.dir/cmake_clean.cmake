file(REMOVE_RECURSE
  "CMakeFiles/tm_test.dir/tests/tm_test.cc.o"
  "CMakeFiles/tm_test.dir/tests/tm_test.cc.o.d"
  "tm_test"
  "tm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
