file(REMOVE_RECURSE
  "CMakeFiles/fig16_max_stretch.dir/bench/fig16_max_stretch.cc.o"
  "CMakeFiles/fig16_max_stretch.dir/bench/fig16_max_stretch.cc.o.d"
  "fig16_max_stretch"
  "fig16_max_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_max_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
