# Empty dependencies file for fig16_max_stretch.
# This may be replaced when dependencies are built.
