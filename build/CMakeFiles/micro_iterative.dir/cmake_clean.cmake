file(REMOVE_RECURSE
  "CMakeFiles/micro_iterative.dir/bench/micro_iterative.cc.o"
  "CMakeFiles/micro_iterative.dir/bench/micro_iterative.cc.o.d"
  "micro_iterative"
  "micro_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
