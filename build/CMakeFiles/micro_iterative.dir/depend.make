# Empty dependencies file for micro_iterative.
# This may be replaced when dependencies are built.
