file(REMOVE_RECURSE
  "CMakeFiles/fig09_prediction.dir/bench/fig09_prediction.cc.o"
  "CMakeFiles/fig09_prediction.dir/bench/fig09_prediction.cc.o.d"
  "fig09_prediction"
  "fig09_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
