# Empty dependencies file for fig09_prediction.
# This may be replaced when dependencies are built.
