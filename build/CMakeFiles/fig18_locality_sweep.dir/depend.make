# Empty dependencies file for fig18_locality_sweep.
# This may be replaced when dependencies are built.
