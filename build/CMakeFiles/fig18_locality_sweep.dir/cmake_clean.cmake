file(REMOVE_RECURSE
  "CMakeFiles/fig18_locality_sweep.dir/bench/fig18_locality_sweep.cc.o"
  "CMakeFiles/fig18_locality_sweep.dir/bench/fig18_locality_sweep.cc.o.d"
  "fig18_locality_sweep"
  "fig18_locality_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_locality_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
