file(REMOVE_RECURSE
  "CMakeFiles/traffic_class_test.dir/tests/traffic_class_test.cc.o"
  "CMakeFiles/traffic_class_test.dir/tests/traffic_class_test.cc.o.d"
  "traffic_class_test"
  "traffic_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
