# Empty dependencies file for traffic_class_test.
# This may be replaced when dependencies are built.
