file(REMOVE_RECURSE
  "CMakeFiles/ldrctl.dir/tools/ldrctl.cc.o"
  "CMakeFiles/ldrctl.dir/tools/ldrctl.cc.o.d"
  "ldrctl"
  "ldrctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldrctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
