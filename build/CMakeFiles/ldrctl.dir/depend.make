# Empty dependencies file for ldrctl.
# This may be replaced when dependencies are built.
