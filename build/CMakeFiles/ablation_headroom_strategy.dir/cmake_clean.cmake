file(REMOVE_RECURSE
  "CMakeFiles/ablation_headroom_strategy.dir/bench/ablation_headroom_strategy.cc.o"
  "CMakeFiles/ablation_headroom_strategy.dir/bench/ablation_headroom_strategy.cc.o.d"
  "ablation_headroom_strategy"
  "ablation_headroom_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_headroom_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
