# Empty dependencies file for ablation_headroom_strategy.
# This may be replaced when dependencies are built.
