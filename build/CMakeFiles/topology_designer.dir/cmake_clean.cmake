file(REMOVE_RECURSE
  "CMakeFiles/topology_designer.dir/examples/topology_designer.cpp.o"
  "CMakeFiles/topology_designer.dir/examples/topology_designer.cpp.o.d"
  "topology_designer"
  "topology_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
