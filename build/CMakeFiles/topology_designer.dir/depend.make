# Empty dependencies file for topology_designer.
# This may be replaced when dependencies are built.
