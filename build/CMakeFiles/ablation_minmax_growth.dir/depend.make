# Empty dependencies file for ablation_minmax_growth.
# This may be replaced when dependencies are built.
