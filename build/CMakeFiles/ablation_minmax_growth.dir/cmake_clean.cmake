file(REMOVE_RECURSE
  "CMakeFiles/ablation_minmax_growth.dir/bench/ablation_minmax_growth.cc.o"
  "CMakeFiles/ablation_minmax_growth.dir/bench/ablation_minmax_growth.cc.o.d"
  "ablation_minmax_growth"
  "ablation_minmax_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minmax_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
