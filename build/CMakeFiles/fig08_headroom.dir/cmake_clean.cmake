file(REMOVE_RECURSE
  "CMakeFiles/fig08_headroom.dir/bench/fig08_headroom.cc.o"
  "CMakeFiles/fig08_headroom.dir/bench/fig08_headroom.cc.o.d"
  "fig08_headroom"
  "fig08_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
