# Empty dependencies file for fig08_headroom.
# This may be replaced when dependencies are built.
