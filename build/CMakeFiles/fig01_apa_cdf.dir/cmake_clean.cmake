file(REMOVE_RECURSE
  "CMakeFiles/fig01_apa_cdf.dir/bench/fig01_apa_cdf.cc.o"
  "CMakeFiles/fig01_apa_cdf.dir/bench/fig01_apa_cdf.cc.o.d"
  "fig01_apa_cdf"
  "fig01_apa_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_apa_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
