# Empty dependencies file for fig01_apa_cdf.
# This may be replaced when dependencies are built.
