
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "CMakeFiles/ldr.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/ldr.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/ksp.cc" "CMakeFiles/ldr.dir/src/graph/ksp.cc.o" "gcc" "CMakeFiles/ldr.dir/src/graph/ksp.cc.o.d"
  "/root/repo/src/graph/max_flow.cc" "CMakeFiles/ldr.dir/src/graph/max_flow.cc.o" "gcc" "CMakeFiles/ldr.dir/src/graph/max_flow.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "CMakeFiles/ldr.dir/src/graph/shortest_path.cc.o" "gcc" "CMakeFiles/ldr.dir/src/graph/shortest_path.cc.o.d"
  "/root/repo/src/lp/lp.cc" "CMakeFiles/ldr.dir/src/lp/lp.cc.o" "gcc" "CMakeFiles/ldr.dir/src/lp/lp.cc.o.d"
  "/root/repo/src/metrics/llpd.cc" "CMakeFiles/ldr.dir/src/metrics/llpd.cc.o" "gcc" "CMakeFiles/ldr.dir/src/metrics/llpd.cc.o.d"
  "/root/repo/src/routing/b4.cc" "CMakeFiles/ldr.dir/src/routing/b4.cc.o" "gcc" "CMakeFiles/ldr.dir/src/routing/b4.cc.o.d"
  "/root/repo/src/routing/ldr_controller.cc" "CMakeFiles/ldr.dir/src/routing/ldr_controller.cc.o" "gcc" "CMakeFiles/ldr.dir/src/routing/ldr_controller.cc.o.d"
  "/root/repo/src/routing/link_based.cc" "CMakeFiles/ldr.dir/src/routing/link_based.cc.o" "gcc" "CMakeFiles/ldr.dir/src/routing/link_based.cc.o.d"
  "/root/repo/src/routing/lp_routing.cc" "CMakeFiles/ldr.dir/src/routing/lp_routing.cc.o" "gcc" "CMakeFiles/ldr.dir/src/routing/lp_routing.cc.o.d"
  "/root/repo/src/routing/shortest_path_routing.cc" "CMakeFiles/ldr.dir/src/routing/shortest_path_routing.cc.o" "gcc" "CMakeFiles/ldr.dir/src/routing/shortest_path_routing.cc.o.d"
  "/root/repo/src/sim/corpus_runner.cc" "CMakeFiles/ldr.dir/src/sim/corpus_runner.cc.o" "gcc" "CMakeFiles/ldr.dir/src/sim/corpus_runner.cc.o.d"
  "/root/repo/src/sim/evaluate.cc" "CMakeFiles/ldr.dir/src/sim/evaluate.cc.o" "gcc" "CMakeFiles/ldr.dir/src/sim/evaluate.cc.o.d"
  "/root/repo/src/sim/growth.cc" "CMakeFiles/ldr.dir/src/sim/growth.cc.o" "gcc" "CMakeFiles/ldr.dir/src/sim/growth.cc.o.d"
  "/root/repo/src/sim/replay.cc" "CMakeFiles/ldr.dir/src/sim/replay.cc.o" "gcc" "CMakeFiles/ldr.dir/src/sim/replay.cc.o.d"
  "/root/repo/src/sim/workload.cc" "CMakeFiles/ldr.dir/src/sim/workload.cc.o" "gcc" "CMakeFiles/ldr.dir/src/sim/workload.cc.o.d"
  "/root/repo/src/tm/traffic_matrix.cc" "CMakeFiles/ldr.dir/src/tm/traffic_matrix.cc.o" "gcc" "CMakeFiles/ldr.dir/src/tm/traffic_matrix.cc.o.d"
  "/root/repo/src/topology/generators.cc" "CMakeFiles/ldr.dir/src/topology/generators.cc.o" "gcc" "CMakeFiles/ldr.dir/src/topology/generators.cc.o.d"
  "/root/repo/src/topology/geo.cc" "CMakeFiles/ldr.dir/src/topology/geo.cc.o" "gcc" "CMakeFiles/ldr.dir/src/topology/geo.cc.o.d"
  "/root/repo/src/topology/graphml.cc" "CMakeFiles/ldr.dir/src/topology/graphml.cc.o" "gcc" "CMakeFiles/ldr.dir/src/topology/graphml.cc.o.d"
  "/root/repo/src/topology/topology.cc" "CMakeFiles/ldr.dir/src/topology/topology.cc.o" "gcc" "CMakeFiles/ldr.dir/src/topology/topology.cc.o.d"
  "/root/repo/src/topology/zoo_corpus.cc" "CMakeFiles/ldr.dir/src/topology/zoo_corpus.cc.o" "gcc" "CMakeFiles/ldr.dir/src/topology/zoo_corpus.cc.o.d"
  "/root/repo/src/traffic/fft.cc" "CMakeFiles/ldr.dir/src/traffic/fft.cc.o" "gcc" "CMakeFiles/ldr.dir/src/traffic/fft.cc.o.d"
  "/root/repo/src/traffic/multiplex.cc" "CMakeFiles/ldr.dir/src/traffic/multiplex.cc.o" "gcc" "CMakeFiles/ldr.dir/src/traffic/multiplex.cc.o.d"
  "/root/repo/src/traffic/predictor.cc" "CMakeFiles/ldr.dir/src/traffic/predictor.cc.o" "gcc" "CMakeFiles/ldr.dir/src/traffic/predictor.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "CMakeFiles/ldr.dir/src/traffic/trace.cc.o" "gcc" "CMakeFiles/ldr.dir/src/traffic/trace.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/ldr.dir/src/util/random.cc.o" "gcc" "CMakeFiles/ldr.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/ldr.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/ldr.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/ldr.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/ldr.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
