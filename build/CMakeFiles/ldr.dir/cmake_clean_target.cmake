file(REMOVE_RECURSE
  "libldr.a"
)
