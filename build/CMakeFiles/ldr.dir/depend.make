# Empty dependencies file for ldr.
# This may be replaced when dependencies are built.
